#include "wordauto/regex.h"

#include "support/check.h"

namespace nw {

Regex Regex::Empty() {
  return Regex(std::make_shared<Node>(Node{Op::kEmpty, 0, 0, nullptr, nullptr}));
}
Regex Regex::Eps() {
  return Regex(std::make_shared<Node>(Node{Op::kEps, 0, 0, nullptr, nullptr}));
}
Regex Regex::Sym(Symbol a) {
  return Regex(std::make_shared<Node>(Node{Op::kSym, a, 0, nullptr, nullptr}));
}
Regex Regex::Any(size_t num_symbols) {
  return Regex(
      std::make_shared<Node>(Node{Op::kAny, 0, num_symbols, nullptr, nullptr}));
}
Regex Regex::Cat(Regex r1, Regex r2) {
  return Regex(std::make_shared<Node>(
      Node{Op::kCat, 0, 0, std::move(r1.node_), std::move(r2.node_)}));
}
Regex Regex::Alt(Regex r1, Regex r2) {
  return Regex(std::make_shared<Node>(
      Node{Op::kAlt, 0, 0, std::move(r1.node_), std::move(r2.node_)}));
}
Regex Regex::Star(Regex r) {
  return Regex(std::make_shared<Node>(
      Node{Op::kStar, 0, 0, std::move(r.node_), nullptr}));
}
Regex Regex::Word(const std::vector<Symbol>& word) {
  Regex r = Eps();
  for (Symbol a : word) r = Cat(std::move(r), Sym(a));
  return r;
}

std::pair<StateId, StateId> Regex::Build(const Node& n, Nfa* nfa) {
  StateId in = nfa->AddState();
  StateId out = nfa->AddState();
  switch (n.op) {
    case Op::kEmpty:
      break;  // no path from in to out
    case Op::kEps:
      nfa->AddEpsilon(in, out);
      break;
    case Op::kSym:
      nfa->AddTransition(in, n.sym, out);
      break;
    case Op::kAny:
      for (Symbol a = 0; a < n.any_width; ++a) nfa->AddTransition(in, a, out);
      break;
    case Op::kCat: {
      auto [li, lo] = Build(*n.left, nfa);
      auto [ri, ro] = Build(*n.right, nfa);
      nfa->AddEpsilon(in, li);
      nfa->AddEpsilon(lo, ri);
      nfa->AddEpsilon(ro, out);
      break;
    }
    case Op::kAlt: {
      auto [li, lo] = Build(*n.left, nfa);
      auto [ri, ro] = Build(*n.right, nfa);
      nfa->AddEpsilon(in, li);
      nfa->AddEpsilon(in, ri);
      nfa->AddEpsilon(lo, out);
      nfa->AddEpsilon(ro, out);
      break;
    }
    case Op::kStar: {
      auto [li, lo] = Build(*n.left, nfa);
      nfa->AddEpsilon(in, out);
      nfa->AddEpsilon(in, li);
      nfa->AddEpsilon(lo, li);
      nfa->AddEpsilon(lo, out);
      break;
    }
  }
  return {in, out};
}

Nfa Regex::Compile(size_t num_symbols) const {
  NW_CHECK(node_ != nullptr);
  Nfa nfa(num_symbols);
  auto [in, out] = Build(*node_, &nfa);
  nfa.AddInitial(in);
  nfa.set_final(out);
  return nfa;
}

}  // namespace nw
