// Nondeterministic finite word automata with ε-moves, subset construction,
// and standard combinators. Substrate for regex compilation and for the
// word-automaton baselines.
#ifndef NW_WORDAUTO_NFA_H_
#define NW_WORDAUTO_NFA_H_

#include <vector>

#include "wordauto/dfa.h"

namespace nw {

/// A nondeterministic finite automaton with ε-transitions.
class Nfa {
 public:
  explicit Nfa(size_t num_symbols) : num_symbols_(num_symbols) {}

  StateId AddState(bool is_final = false);
  void AddInitial(StateId q) { initial_.push_back(q); }
  void set_final(StateId q, bool f = true) { final_[q] = f; }
  bool is_final(StateId q) const { return final_[q]; }

  size_t num_states() const { return final_.size(); }
  size_t num_symbols() const { return num_symbols_; }
  const std::vector<StateId>& initial() const { return initial_; }

  /// Adds q --a--> q2.
  void AddTransition(StateId q, Symbol a, StateId q2);
  /// Adds q --ε--> q2.
  void AddEpsilon(StateId q, StateId q2);

  const std::vector<StateId>& Next(StateId q, Symbol a) const {
    return delta_[q * num_symbols_ + a];
  }
  const std::vector<StateId>& Epsilon(StateId q) const { return eps_[q]; }

  bool Accepts(const std::vector<Symbol>& word) const;

  /// Subset construction (reachable part only).
  Dfa Determinize() const;

  /// Reverses the language: reversed transitions, initial and final swapped.
  Nfa Reversed() const;

 private:
  /// ε-closure of a sorted state set, returned sorted and deduplicated.
  std::vector<StateId> Closure(std::vector<StateId> set) const;

  size_t num_symbols_;
  std::vector<StateId> initial_;
  std::vector<bool> final_;
  std::vector<std::vector<StateId>> delta_;
  std::vector<std::vector<StateId>> eps_;
};

}  // namespace nw

#endif  // NW_WORDAUTO_NFA_H_
