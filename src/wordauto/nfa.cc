#include "wordauto/nfa.h"

#include <algorithm>
#include <map>

#include "support/check.h"

namespace nw {

StateId Nfa::AddState(bool is_final) {
  StateId id = static_cast<StateId>(final_.size());
  final_.push_back(is_final);
  delta_.resize(delta_.size() + num_symbols_);
  eps_.emplace_back();
  return id;
}

void Nfa::AddTransition(StateId q, Symbol a, StateId q2) {
  NW_DCHECK(q < num_states() && a < num_symbols_ && q2 < num_states());
  delta_[q * num_symbols_ + a].push_back(q2);
}

void Nfa::AddEpsilon(StateId q, StateId q2) { eps_[q].push_back(q2); }

std::vector<StateId> Nfa::Closure(std::vector<StateId> set) const {
  std::vector<bool> in(num_states(), false);
  std::vector<StateId> stack;
  for (StateId q : set) {
    if (!in[q]) {
      in[q] = true;
      stack.push_back(q);
    }
  }
  std::vector<StateId> out;
  while (!stack.empty()) {
    StateId q = stack.back();
    stack.pop_back();
    out.push_back(q);
    for (StateId t : eps_[q]) {
      if (!in[t]) {
        in[t] = true;
        stack.push_back(t);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Nfa::Accepts(const std::vector<Symbol>& word) const {
  std::vector<StateId> cur = Closure(initial_);
  for (Symbol a : word) {
    std::vector<StateId> next;
    for (StateId q : cur) {
      const auto& ts = Next(q, a);
      next.insert(next.end(), ts.begin(), ts.end());
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    cur = Closure(std::move(next));
    if (cur.empty()) return false;
  }
  return std::any_of(cur.begin(), cur.end(),
                     [&](StateId q) { return final_[q]; });
}

Dfa Nfa::Determinize() const {
  Dfa out(num_symbols_);
  std::map<std::vector<StateId>, StateId> ids;
  std::vector<std::vector<StateId>> order;

  auto intern = [&](std::vector<StateId> set) -> StateId {
    auto it = ids.find(set);
    if (it != ids.end()) return it->second;
    bool fin = std::any_of(set.begin(), set.end(),
                           [&](StateId q) { return final_[q]; });
    StateId id = out.AddState(fin);
    ids.emplace(set, id);
    order.push_back(std::move(set));
    return id;
  };

  StateId start = intern(Closure(initial_));
  out.set_initial(start);
  for (size_t i = 0; i < order.size(); ++i) {
    // Copy: `order` may reallocate as new subsets are interned.
    std::vector<StateId> cur = order[i];
    for (Symbol a = 0; a < num_symbols_; ++a) {
      std::vector<StateId> next;
      for (StateId q : cur) {
        const auto& ts = Next(q, a);
        next.insert(next.end(), ts.begin(), ts.end());
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      next = Closure(std::move(next));
      StateId tid = intern(std::move(next));
      out.SetTransition(static_cast<StateId>(i), a, tid);
    }
  }
  return out;
}

Nfa Nfa::Reversed() const {
  Nfa out(num_symbols_);
  for (StateId q = 0; q < num_states(); ++q) out.AddState(false);
  for (StateId q = 0; q < num_states(); ++q) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      for (StateId t : Next(q, a)) out.AddTransition(t, a, q);
    }
    for (StateId t : Epsilon(q)) out.AddEpsilon(t, q);
    if (final_[q]) out.AddInitial(q);
  }
  for (StateId q : initial_) out.set_final(q);
  return out;
}

}  // namespace nw
