// A small regular-expression combinator library with Thompson compilation
// to NFA. Used to express the paper's linear-order queries, e.g. the
// introduction's Σ*p1Σ*...pnΣ* pattern-order query.
#ifndef NW_WORDAUTO_REGEX_H_
#define NW_WORDAUTO_REGEX_H_

#include <memory>
#include <vector>

#include "wordauto/nfa.h"

namespace nw {

/// An immutable regular expression tree. Build with the static combinators;
/// share freely (nodes are refcounted).
class Regex {
 public:
  /// ∅ — the empty language.
  static Regex Empty();
  /// ε — the empty word.
  static Regex Eps();
  /// A single symbol.
  static Regex Sym(Symbol a);
  /// Any single symbol of a `num_symbols` alphabet (Σ as a regex).
  static Regex Any(size_t num_symbols);
  /// Concatenation r1 · r2.
  static Regex Cat(Regex r1, Regex r2);
  /// Alternation r1 | r2.
  static Regex Alt(Regex r1, Regex r2);
  /// Kleene star r*.
  static Regex Star(Regex r);
  /// Literal word a1 a2 ... ak.
  static Regex Word(const std::vector<Symbol>& word);

  /// Thompson construction over a `num_symbols` alphabet.
  Nfa Compile(size_t num_symbols) const;

 private:
  enum class Op { kEmpty, kEps, kSym, kAny, kCat, kAlt, kStar };
  struct Node {
    Op op;
    Symbol sym = 0;
    size_t any_width = 0;
    std::shared_ptr<const Node> left, right;
  };
  explicit Regex(std::shared_ptr<const Node> n) : node_(std::move(n)) {}

  // Returns (entry, exit) state pair of the compiled fragment.
  static std::pair<StateId, StateId> Build(const Node& n, Nfa* nfa);

  std::shared_ptr<const Node> node_;
};

}  // namespace nw

#endif  // NW_WORDAUTO_REGEX_H_
