#include "wordauto/dfa.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "support/check.h"

namespace nw {

StateId Dfa::AddState(bool is_final) {
  StateId id = static_cast<StateId>(final_.size());
  final_.push_back(is_final);
  delta_.resize(delta_.size() + num_symbols_, kNoState);
  return id;
}

void Dfa::SetTransition(StateId q, Symbol a, StateId q2) {
  NW_DCHECK(q < num_states() && a < num_symbols_ && q2 < num_states());
  delta_[q * num_symbols_ + a] = q2;
}

bool Dfa::Accepts(const std::vector<Symbol>& word) const {
  StateId q = initial_;
  for (Symbol a : word) {
    if (q == kNoState) return false;
    q = Next(q, a);
  }
  return q != kNoState && final_[q];
}

bool Dfa::AcceptsTagged(const NestedWord& n) const {
  const size_t sigma = num_symbols_ / 3;
  StateId q = initial_;
  for (const TaggedSymbol& t : n.tagged()) {
    if (q == kNoState) return false;
    q = Next(q, TaggedIndex(t, sigma));
  }
  return q != kNoState && final_[q];
}

Dfa Dfa::Totalize() const {
  bool total = true;
  for (StateId v : delta_) {
    if (v == kNoState) {
      total = false;
      break;
    }
  }
  if (total) return *this;
  Dfa out = *this;
  StateId dead = out.AddState(false);
  for (StateId q = 0; q < out.num_states(); ++q) {
    for (Symbol a = 0; a < num_symbols_; ++a) {
      if (out.Next(q, a) == kNoState) out.SetTransition(q, a, dead);
    }
  }
  return out;
}

namespace {

// Restricts a total DFA to its reachable part.
Dfa Reachable(const Dfa& d) {
  std::vector<StateId> remap(d.num_states(), kNoState);
  std::vector<StateId> order;
  remap[d.initial()] = 0;
  order.push_back(d.initial());
  for (size_t i = 0; i < order.size(); ++i) {
    for (Symbol a = 0; a < d.num_symbols(); ++a) {
      StateId t = d.Next(order[i], a);
      if (t != kNoState && remap[t] == kNoState) {
        remap[t] = static_cast<StateId>(order.size());
        order.push_back(t);
      }
    }
  }
  Dfa out(d.num_symbols());
  for (StateId q : order) out.AddState(d.is_final(q));
  out.set_initial(0);
  for (StateId q : order) {
    for (Symbol a = 0; a < d.num_symbols(); ++a) {
      StateId t = d.Next(q, a);
      if (t != kNoState) out.SetTransition(remap[q], a, remap[t]);
    }
  }
  return out;
}

}  // namespace

Dfa Dfa::Minimize() const {
  NW_CHECK_MSG(initial_ != kNoState, "Minimize() needs an initial state");
  Dfa d = Reachable(Totalize());
  const size_t n = d.num_states();
  const size_t k = d.num_symbols();

  // Inverse transition lists, laid out per (symbol, state).
  std::vector<std::vector<StateId>> inv(n * k);
  for (StateId q = 0; q < n; ++q) {
    for (Symbol a = 0; a < k; ++a) {
      inv[d.Next(q, a) * k + a].push_back(q);
    }
  }

  // Hopcroft partition refinement.
  std::vector<uint32_t> block_of(n, 0);
  std::vector<std::vector<StateId>> blocks(2);
  for (StateId q = 0; q < n; ++q) {
    block_of[q] = d.is_final(q) ? 1 : 0;
    blocks[block_of[q]].push_back(q);
  }
  if (blocks[1].empty() || blocks[0].empty()) {
    // Single-block partition: one state total.
    Dfa out(k);
    StateId s = out.AddState(d.is_final(0));
    out.set_initial(s);
    for (Symbol a = 0; a < k; ++a) out.SetTransition(s, a, s);
    return out;
  }

  std::vector<std::pair<uint32_t, Symbol>> worklist;
  uint32_t smaller = blocks[0].size() <= blocks[1].size() ? 0 : 1;
  for (Symbol a = 0; a < k; ++a) worklist.push_back({smaller, a});

  std::vector<StateId> touched;          // states with an a-pred in splitter
  std::vector<uint32_t> touched_blocks;  // blocks needing a split check

  while (!worklist.empty()) {
    auto [splitter, a] = worklist.back();
    worklist.pop_back();

    // For a DFA, each state occurs at most once in the union of the
    // splitter's inverse-a lists, so counts below are distinct-state counts.
    touched.clear();
    touched_blocks.clear();
    std::vector<uint32_t> hit_count(blocks.size(), 0);
    for (StateId s : blocks[splitter]) {
      for (StateId p : inv[s * k + a]) {
        touched.push_back(p);
        uint32_t b = block_of[p];
        if (hit_count[b]++ == 0) touched_blocks.push_back(b);
      }
    }
    for (uint32_t b : touched_blocks) {
      if (hit_count[b] == blocks[b].size()) continue;  // fully hit: no split
      // Split block b into (hit, not-hit).
      uint32_t nb = static_cast<uint32_t>(blocks.size());
      blocks.emplace_back();
      std::unordered_set<StateId> hitset;
      for (StateId p : touched) {
        if (block_of[p] == b) hitset.insert(p);
      }
      std::vector<StateId> keep;
      for (StateId q : blocks[b]) {
        if (hitset.count(q)) {
          blocks[nb].push_back(q);
          block_of[q] = nb;
        } else {
          keep.push_back(q);
        }
      }
      blocks[b] = std::move(keep);
      // Enqueue both halves for every symbol. (Classic Hopcroft enqueues
      // only the smaller half but must then patch pending worklist entries;
      // enqueueing both is unconditionally correct and the sizes used in
      // this library don't need the extra log-factor savings.)
      for (Symbol c = 0; c < k; ++c) {
        worklist.push_back({b, c});
        worklist.push_back({nb, c});
      }
    }
  }

  // Build the quotient automaton.
  Dfa out(k);
  for (uint32_t b = 0; b < blocks.size(); ++b) {
    out.AddState(d.is_final(blocks[b][0]));
  }
  out.set_initial(block_of[d.initial()]);
  for (uint32_t b = 0; b < blocks.size(); ++b) {
    StateId rep = blocks[b][0];
    for (Symbol a = 0; a < k; ++a) {
      out.SetTransition(b, a, block_of[d.Next(rep, a)]);
    }
  }
  return out;
}

bool Dfa::IsEmpty() const {
  if (initial_ == kNoState) return true;
  std::vector<bool> seen(num_states(), false);
  std::vector<StateId> stack = {initial_};
  seen[initial_] = true;
  while (!stack.empty()) {
    StateId q = stack.back();
    stack.pop_back();
    if (final_[q]) return false;
    for (Symbol a = 0; a < num_symbols_; ++a) {
      StateId t = Next(q, a);
      if (t != kNoState && !seen[t]) {
        seen[t] = true;
        stack.push_back(t);
      }
    }
  }
  return true;
}

bool Dfa::Equivalent(const Dfa& a, const Dfa& b) {
  NW_CHECK(a.num_symbols() == b.num_symbols());
  Dfa ta = a.Totalize();
  Dfa tb = b.Totalize();
  // BFS over the product looking for a distinguishing pair.
  std::vector<std::pair<StateId, StateId>> stack = {
      {ta.initial(), tb.initial()}};
  std::unordered_set<uint64_t> seen;
  seen.insert((uint64_t)ta.initial() << 32 | tb.initial());
  while (!stack.empty()) {
    auto [p, q] = stack.back();
    stack.pop_back();
    if (ta.is_final(p) != tb.is_final(q)) return false;
    for (Symbol c = 0; c < ta.num_symbols(); ++c) {
      StateId p2 = ta.Next(p, c);
      StateId q2 = tb.Next(q, c);
      uint64_t key = (uint64_t)p2 << 32 | q2;
      if (seen.insert(key).second) stack.push_back({p2, q2});
    }
  }
  return true;
}

}  // namespace nw
