// Deterministic finite word automata — the classical baseline the paper
// compares nested word automata against (Theorems 2, 3, 8; intro query).
//
// DFAs here run over an abstract dense symbol domain 0..num_symbols-1. To
// run over the tagged alphabet Σ̂ (§2.2) use TaggedIndex() to map the 3·|Σ|
// tagged letters onto dense ids.
#ifndef NW_WORDAUTO_DFA_H_
#define NW_WORDAUTO_DFA_H_

#include <cstdint>
#include <vector>

#include "nw/nested_word.h"

namespace nw {

/// Dense automaton state id.
using StateId = uint32_t;
/// Sentinel meaning "no transition" (implicit reject) or "no state".
inline constexpr StateId kNoState = UINT32_MAX;

/// Maps a tagged letter to a dense id in [0, 3·num_symbols):
/// internals first, then calls, then returns.
inline Symbol TaggedIndex(TaggedSymbol t, size_t num_symbols) {
  return static_cast<Symbol>(t.kind) * static_cast<Symbol>(num_symbols) +
         t.symbol;
}

/// Number of letters of the tagged alphabet Σ̂ for |Σ| = num_symbols.
inline size_t TaggedAlphabetSize(size_t num_symbols) {
  return 3 * num_symbols;
}

/// A (possibly partial) deterministic finite automaton.
class Dfa {
 public:
  /// Creates a DFA with no states over a `num_symbols`-letter alphabet.
  explicit Dfa(size_t num_symbols) : num_symbols_(num_symbols) {}

  /// Adds a state; returns its id. The first state added is NOT
  /// automatically initial; call set_initial.
  StateId AddState(bool is_final = false);

  void set_initial(StateId q) { initial_ = q; }
  StateId initial() const { return initial_; }
  void set_final(StateId q, bool f = true) { final_[q] = f; }
  bool is_final(StateId q) const { return final_[q]; }

  size_t num_states() const { return final_.size(); }
  size_t num_symbols() const { return num_symbols_; }

  /// Defines δ(q, a) = q2 (overwrites).
  void SetTransition(StateId q, Symbol a, StateId q2);
  /// δ(q, a), or kNoState when undefined.
  StateId Next(StateId q, Symbol a) const {
    return delta_[q * num_symbols_ + a];
  }

  /// Runs the automaton; missing transitions reject.
  bool Accepts(const std::vector<Symbol>& word) const;

  /// Runs over the tagged encoding of a nested word (alphabet must be Σ̂,
  /// i.e. num_symbols() == 3·|Σ|).
  bool AcceptsTagged(const NestedWord& n) const;

  /// Returns an equivalent total DFA (adds a dead state if any transition
  /// is missing; otherwise returns *this unchanged).
  Dfa Totalize() const;

  /// Minimal equivalent *total* DFA (Hopcroft's algorithm on the reachable
  /// part). State count includes the dead state when the language is not
  /// total-safe; the paper's lower bounds are stated as "at least 2^s
  /// states", which this measures conservatively.
  Dfa Minimize() const;

  /// True iff no reachable final state.
  bool IsEmpty() const;

  /// Language equivalence via product of minimized automata.
  static bool Equivalent(const Dfa& a, const Dfa& b);

 private:
  size_t num_symbols_;
  StateId initial_ = kNoState;
  std::vector<bool> final_;
  std::vector<StateId> delta_;
};

}  // namespace nw

#endif  // NW_WORDAUTO_DFA_H_
